package empart

import (
	"testing"

	"repro/internal/emio"
	"repro/internal/verify"
	"repro/internal/workload"
)

func newSys(t *testing.T) *System {
	t.Helper()
	sys, err := New(Config{M: 4096, B: 32})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func stageUniform(t *testing.T, sys *System, n int, seed uint64) ([]Elem, *File) {
	t.Helper()
	elems := workload.Elems(workload.Uniform, n, sys.Config().B, seed)
	return elems, sys.Stage(elems)
}

// checkNoLeaks releases the given algorithm outputs and then asserts that no
// scratch file is still live on sys's disk: every file an algorithm created
// internally must have been released by the time it returned.
func checkNoLeaks(t *testing.T, sys *System, outs ...*File) {
	t.Helper()
	for _, f := range outs {
		if f != nil && !f.Released() {
			f.Release()
		}
	}
	emio.RequireNoLeaks(t, sys.Ctx())
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{M: 3, B: 2}); err == nil {
		t.Error("M < 2B accepted")
	}
}

func TestSortFacade(t *testing.T) {
	sys := newSys(t)
	in, f := stageUniform(t, sys, 5000, 1)
	out, err := sys.Sort(f)
	if err != nil {
		t.Fatal(err)
	}
	got := sys.Read(out)
	if err := verify.Sorted(got); err != nil {
		t.Fatal(err)
	}
	if err := verify.SameMultiset(got, in); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, sys, out)
}

func TestSelectFacade(t *testing.T) {
	sys := newSys(t)
	in, f := stageUniform(t, sys, 2000, 2)
	e, err := sys.Select(f, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.MultiSelect(in, []int64{1000}, []Elem{e}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSelectFacade(t *testing.T) {
	sys := newSys(t)
	in, f := stageUniform(t, sys, 4096, 3)
	ranks := []int64{1, 1024, 2048, 4096}
	out, err := sys.MultiSelect(f, ranks)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.MultiSelect(in, ranks, sys.Read(out)); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, sys, out)
}

func TestMultiPartitionFacade(t *testing.T) {
	sys := newSys(t)
	in, f := stageUniform(t, sys, 3000, 4)
	sizes := []int64{1000, 500, 1500}
	out, err := sys.MultiPartition(f, sizes)
	if err != nil {
		t.Fatal(err)
	}
	got := sys.Read(out)
	if err := verify.SameMultiset(got, in); err != nil {
		t.Fatal(err)
	}
	if err := verify.OrderedSegments(got, sizes); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, sys, out)
}

func TestSplittersFacadeAllVariants(t *testing.T) {
	for _, p := range []Params{
		{K: 8, A: 16, B: 1 << 40}, // right-grounded
		{K: 8, A: 0, B: 1024},     // left-grounded
		{K: 8, A: 64, B: 2048},    // two-sided
	} {
		sys := newSys(t)
		in, f := stageUniform(t, sys, 4096, 5)
		out, err := sys.Splitters(f, p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if _, err := verify.Splitters(in, sys.Read(out), p.K, p.A, p.B); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		checkNoLeaks(t, sys, out)
	}
}

func TestPartitionFacadeAllVariants(t *testing.T) {
	for _, p := range []Params{
		{K: 8, A: 16, B: 1 << 40},
		{K: 8, A: 0, B: 1024},
		{K: 8, A: 64, B: 2048},
	} {
		sys := newSys(t)
		in, f := stageUniform(t, sys, 4096, 6)
		res, err := sys.Partition(f, p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if err := verify.Partition(in, sys.Read(res.Data), res.Sizes, p.K, p.A, p.B); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		checkNoLeaks(t, sys, res.Data)
	}
}

func TestPrecisePartitionFacade(t *testing.T) {
	sys := newSys(t)
	in, f := stageUniform(t, sys, 3000, 7)
	out, err := sys.PrecisePartition(f, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.PrecisePartition(in, sys.Read(out), 500); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, sys, out)
}

func TestHistogramFacade(t *testing.T) {
	sys := newSys(t)
	_, f := stageUniform(t, sys, 4096, 8)
	buckets, err := sys.EquiDepthHistogram(f, 8, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total != 4096 {
		t.Fatalf("histogram depths sum to %d", total)
	}
	checkNoLeaks(t, sys)
}

func TestStatsAndPeakMemoryAccounting(t *testing.T) {
	sys := newSys(t)
	_, f := stageUniform(t, sys, 4096, 9)
	if sys.Stats().Total() != 0 {
		t.Fatal("staging charged I/Os")
	}
	if _, err := sys.Sort(f); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Total() == 0 {
		t.Fatal("sort charged no I/Os")
	}
	if sys.PeakMemory() == 0 || sys.PeakMemory() > 4096 {
		t.Fatalf("peak memory %d implausible", sys.PeakMemory())
	}
	sys.ResetStats()
	if sys.Stats().Total() != 0 {
		t.Fatal("ResetStats did not reset")
	}
}

func TestMachineFormulaAccess(t *testing.T) {
	sys := newSys(t)
	mc := sys.Machine()
	if mc.M != 4096 || mc.B != 32 {
		t.Fatalf("machine %+v", mc)
	}
	if mc.Sort(1<<20) <= 0 {
		t.Fatal("bound formula broken")
	}
}

func TestVariantReexports(t *testing.T) {
	p := Params{K: 4, A: 0, B: 1000}
	if v := p.Variant(1000); v != LeftGrounded {
		t.Fatalf("variant %v", v)
	}
	if RightGrounded.String() != "right-grounded" || TwoSided.String() != "two-sided" {
		t.Fatal("variant names broken")
	}
}

func TestEndToEndMeasuredVsBounds(t *testing.T) {
	// Facade-level shape check: measured right-grounded splitters cost is
	// sublinear and within a constant of the formula.
	sys := newSys(t)
	n := 1 << 17
	_, f := stageUniform(t, sys, n, 10)
	sys.ResetStats()
	p := Params{K: 16, A: 8, B: int64(n)}
	out, err := sys.Splitters(f, p)
	if err != nil {
		t.Fatal(err)
	}
	out.Release()
	got := float64(sys.Stats().Total())
	formula := sys.Machine().SplittersRight(p.A, p.K)
	if got > 40*formula {
		t.Errorf("measured %v vs formula %v: constant too large", got, formula)
	}
	if scan := float64(n) / 32; got > scan/4 {
		t.Errorf("not sublinear: %v vs scan %v", got, scan)
	}
}

func TestDiskFootprintFacade(t *testing.T) {
	sys := newSys(t)
	_, f := stageUniform(t, sys, 4096, 20)
	if sys.LiveDiskBlocks() != 4096/32 {
		t.Fatalf("live blocks %d, want %d", sys.LiveDiskBlocks(), 4096/32)
	}
	sys.ResetPeakDisk()
	out, err := sys.Sort(f)
	if err != nil {
		t.Fatal(err)
	}
	peak := sys.PeakDiskBlocks()
	if peak <= sys.LiveDiskBlocks() || peak > 4*4096/32 {
		t.Errorf("sort peak footprint %d blocks implausible", peak)
	}
	out.Release()
	if sys.LiveDiskBlocks() != 4096/32 {
		t.Errorf("after release live = %d", sys.LiveDiskBlocks())
	}
}

func TestDistributionSortFacade(t *testing.T) {
	sys := newSys(t)
	in, f := stageUniform(t, sys, 6000, 21)
	out, err := sys.DistributionSort(f)
	if err != nil {
		t.Fatal(err)
	}
	got := sys.Read(out)
	if err := verify.Sorted(got); err != nil {
		t.Fatal(err)
	}
	if err := verify.SameMultiset(got, in); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, sys, out)
}
