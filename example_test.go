package empart_test

import (
	"fmt"
	"log"

	empart "repro"
)

// ExampleSystem_Splitters divides a dataset into buckets with a two-sided
// size guarantee and verifies the bucket sizes.
func ExampleSystem_Splitters() {
	sys, err := empart.New(empart.Config{M: 4096, B: 32})
	if err != nil {
		log.Fatal(err)
	}
	const n = 8192
	elems := make([]empart.Elem, n)
	for i := range elems {
		elems[i] = empart.Elem{Key: int64(i*2654435761) % 1000003, Aux: int64(i)}
	}
	f := sys.Stage(elems)
	sys.ResetStats()

	p := empart.Params{K: 8, A: n / 32, B: n / 2}
	sp, err := sys.Splitters(f, p)
	if err != nil {
		log.Fatal(err)
	}
	splitters := sys.Read(sp)

	// Count the induced buckets and check the contract.
	counts := make([]int64, p.K)
	for _, e := range elems {
		j := 0
		for j < len(splitters) && (splitters[j].Key < e.Key ||
			(splitters[j].Key == e.Key && splitters[j].Aux < e.Aux)) {
			j++
		}
		counts[j]++
	}
	ok := true
	var total int64
	for _, c := range counts {
		if c < p.A || c > p.B {
			ok = false
		}
		total += c
	}
	fmt.Printf("splitters: %d\n", len(splitters))
	fmt.Printf("buckets: %d covering %d elements, all within [%d,%d]: %v\n",
		len(counts), total, p.A, p.B, ok)
	fmt.Printf("cost below one scan (%d blocks): %v\n", n/32, sys.Stats().Total() < n/32)
	// Output:
	// splitters: 7
	// buckets: 8 covering 8192 elements, all within [256,4096]: true
	// cost below one scan (256 blocks): false
}

// ExampleSystem_MultiSelect extracts three order statistics without sorting.
func ExampleSystem_MultiSelect() {
	sys, err := empart.New(empart.Config{M: 4096, B: 32})
	if err != nil {
		log.Fatal(err)
	}
	const n = 10000
	elems := make([]empart.Elem, n)
	for i := range elems {
		elems[i] = empart.Elem{Key: int64((i*37 + 11) % n), Aux: int64(i)}
	}
	f := sys.Stage(elems)
	out, err := sys.MultiSelect(f, []int64{1, 5000, 10000})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range sys.Read(out) {
		fmt.Println(e.Key)
	}
	// Output:
	// 0
	// 4999
	// 9999
}

// ExampleSystem_Partition physically splits a dataset into bounded loads.
func ExampleSystem_Partition() {
	sys, err := empart.New(empart.Config{M: 4096, B: 32})
	if err != nil {
		log.Fatal(err)
	}
	const n = 4096
	elems := make([]empart.Elem, n)
	for i := range elems {
		elems[i] = empart.Elem{Key: int64(n - i), Aux: int64(i)}
	}
	f := sys.Stage(elems)
	res, err := sys.Partition(f, empart.Params{K: 4, A: 0, B: n / 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d partitions, sizes %v, total elements %d\n",
		len(res.Sizes), res.Sizes, res.Data.Len())
	// Output:
	// 4 partitions, sizes [2048 2048 0 0], total elements 4096
}
