// Ablation benchmarks for the design choices DESIGN.md calls out: the
// randomized selection pivot vs the deterministic BFPRT pivot, the sampled
// linear-I/O splitter finder vs the sort-based exact one, the multi-selection
// base case vs naive per-rank selection, and the merge fan-in of external
// sort. Metrics as in bench_test.go.
package empart

import (
	"fmt"
	"testing"

	"repro/internal/approxsplit"
	"repro/internal/emio"
	"repro/internal/emsel"
	"repro/internal/extsort"
	"repro/internal/workload"
)

// BenchmarkAblationSelectPivot compares the randomized median-of-probes
// pivot (default) against the deterministic BFPRT median-of-medians for
// single-rank selection. Expectation: both linear, randomized about 3x
// cheaper.
func BenchmarkAblationSelectPivot(b *testing.B) {
	for _, mode := range []string{"randomized", "deterministic"} {
		b.Run(mode, func(b *testing.B) {
			ctx, err := emio.NewCtx(benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			f := workload.File(ctx.Disk(), workload.Uniform, benchN, 0xab1)
			var io int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.Disk().ResetStats()
				var err error
				if mode == "randomized" {
					_, err = emsel.Select(ctx, f, benchN/2)
				} else {
					_, err = emsel.SelectDeterministic(ctx, f, benchN/2)
				}
				if err != nil {
					b.Fatal(err)
				}
				io = ctx.Disk().Stats().Total()
			}
			b.StopTimer()
			b.ReportMetric(float64(io), "io/op")
			b.ReportMetric(float64(io)/(float64(benchN)/float64(benchCfg.B)), "scans/op")
		})
	}
}

// BenchmarkAblationSplitterFinder compares the randomized sampled splitter
// finder (the Hu-et-al substitute, O(n/B)) against the sort-based exact one
// (O((n/B) lg(n/B))). This is the substitution DESIGN.md §4 documents; the
// sampled version must win by about the sort's pass count.
func BenchmarkAblationSplitterFinder(b *testing.B) {
	g := 256
	for _, mode := range []string{"sampled", "exact-sort"} {
		b.Run(mode, func(b *testing.B) {
			ctx, err := emio.NewCtx(benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			f := workload.File(ctx.Disk(), workload.Uniform, benchN, 0xab2)
			var io int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.Disk().ResetStats()
				var res *approxsplit.Result
				var err error
				if mode == "sampled" {
					res, err = approxsplit.Splitters(ctx, f, g)
				} else {
					res, err = approxsplit.SplittersExact(ctx, f, g)
				}
				if err != nil {
					b.Fatal(err)
				}
				res.Close()
				io = ctx.Disk().Stats().Total()
			}
			b.StopTimer()
			b.ReportMetric(float64(io), "io/op")
			b.ReportMetric(float64(io)/(float64(benchN)/float64(benchCfg.B)), "scans/op")
		})
	}
}

// BenchmarkAblationMultiSelectBaseCase compares Theorem 4's base case (one
// splitter pass + one intermixed-selection instance for all K queries)
// against the naive alternative of K independent exact selections.
// Expectation: naive is cheaper for K = 1-2 and loses linearly in K beyond.
func BenchmarkAblationMultiSelectBaseCase(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		ranks := make([]int64, k)
		for i := range ranks {
			ranks[i] = int64(i+1) * benchN / int64(k+1)
		}
		b.Run(fmt.Sprintf("intermixed/K=%d", k), func(b *testing.B) {
			runMeasured(b, benchCfg, benchN, workload.Uniform, 0,
				func(sys *System, f *File) error {
					out, err := sys.MultiSelect(f, ranks)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				})
		})
		b.Run(fmt.Sprintf("perrank/K=%d", k), func(b *testing.B) {
			ctx, err := emio.NewCtx(benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			f := workload.File(ctx.Disk(), workload.Uniform, benchN, 0xbe7c4)
			var io int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.Disk().ResetStats()
				for _, r := range ranks {
					if _, err := emsel.Select(ctx, f, r); err != nil {
						b.Fatal(err)
					}
				}
				io = ctx.Disk().Stats().Total()
			}
			b.StopTimer()
			b.ReportMetric(float64(io), "io/op")
			b.ReportMetric(float64(io)/(float64(benchN)/float64(benchCfg.B)), "scans/op")
		})
	}
}

// BenchmarkAblationSortFanIn measures external sort under artificially small
// merge fan-ins: halving the fan-in adds merge passes, the lg_{M/B} factor
// made tangible.
func BenchmarkAblationSortFanIn(b *testing.B) {
	for _, fan := range []int{2, 4, 16, 0} { // 0 = natural (M-derived)
		name := fmt.Sprintf("fan=%d", fan)
		if fan == 0 {
			name = "fan=natural"
		}
		b.Run(name, func(b *testing.B) {
			ctx, err := emio.NewCtx(benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			f := workload.File(ctx.Disk(), workload.Uniform, benchN, 0xab3)
			var io int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.Disk().ResetStats()
				runs, err := extsort.FormRuns(ctx, f)
				if err != nil {
					b.Fatal(err)
				}
				out, err := extsort.MergeAllWithFanIn(ctx, runs, fan)
				if err != nil {
					b.Fatal(err)
				}
				out.Release()
				io = ctx.Disk().Stats().Total()
			}
			b.StopTimer()
			b.ReportMetric(float64(io), "io/op")
			b.ReportMetric(float64(io)/(float64(benchN)/float64(benchCfg.B)), "scans/op")
		})
	}
}

// BenchmarkAblationMergeVsDistribution races the two classical external
// sorting strategies — merge (extsort) and distribution (distsort, built on
// the paper's splitter machinery) — at the same parameters. Both are
// Θ((N/B) lg_{M/B}(N/B)).
func BenchmarkAblationMergeVsDistribution(b *testing.B) {
	for _, mode := range []string{"merge", "distribution"} {
		b.Run(mode, func(b *testing.B) {
			runMeasured(b, benchCfg, benchN, workload.Uniform, 0,
				func(sys *System, f *File) error {
					var out *File
					var err error
					if mode == "merge" {
						out, err = sys.Sort(f)
					} else {
						out, err = sys.DistributionSort(f)
					}
					if err != nil {
						return err
					}
					out.Release()
					return nil
				})
		})
	}
}

// BenchmarkBackingStore compares wall-clock cost of the in-memory block
// store against the real file-backed store on an identical sort (the I/O
// counts are identical by construction; this measures the host-side price of
// real positioned I/O).
func BenchmarkBackingStore(b *testing.B) {
	elems := workload.Elems(workload.Uniform, benchN/4, benchCfg.B, 0xd15c)
	b.Run("memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := New(benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			f := sys.Stage(elems)
			out, err := sys.Sort(f)
			if err != nil {
				b.Fatal(err)
			}
			out.Release()
		}
	})
	b.Run("file", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			sys, err := NewFileBacked(benchCfg, fmt.Sprintf("%s/disk-%d.dat", dir, i))
			if err != nil {
				b.Fatal(err)
			}
			f := sys.Stage(elems)
			out, err := sys.Sort(f)
			if err != nil {
				b.Fatal(err)
			}
			out.Release()
			sys.Close()
		}
	})
}
