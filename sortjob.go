package empart

// Crash-safe sort jobs: the orchestration layer that ties a file-backed
// System, a staged input and a checkpoint journal into a unit a process can
// be SIGKILLed out of and restarted into. A fresh job stages its input,
// journals the job shape and the staged manifest, and runs the checkpointed
// sort; a resumed job validates the journal against the configuration,
// re-opens the backing file without truncating it, adopts the staged input
// from its journaled manifest, and continues the sort from the last
// completed phase. The emsort CLI's -journal/-resume flags are a thin shell
// around this type.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/extsort"
)

// JobConfig describes a crash-safe sort job.
type JobConfig struct {
	// Config is the machine configuration. Checkpointed jobs must be
	// sequential (Workers == 0): the parallel engine's shard scratch is not
	// journaled.
	Config Config
	// Path is the backing file (required — manifests describe backing-file
	// extents, so checkpointing needs a file-backed disk).
	Path string
	// Journal is the checkpoint journal path (required).
	Journal string
	// Resume re-opens an existing journal and backing file instead of
	// starting fresh.
	Resume bool
	// FullSync upgrades checkpoint barriers to power-loss durability: at
	// every phase barrier the backing file and then the journal are fsync'd,
	// so a committed record never outlives its data even across a power cut.
	// Off (the default), nothing is fsync'd — data and records commit by
	// reaching the page cache, which is full durability under the
	// process-crash model (SIGKILL, OOM, panic) at near-zero wall overhead,
	// but an ill-timed power cut or kernel panic can lose phases (never
	// correctness: armed block checksums catch torn data, and the journal's
	// torn tail is truncated on resume).
	FullSync bool
}

// SortJob is one crash-safe sort: a file-backed System, the staged (or
// resume-adopted) input, and the open checkpoint journal.
type SortJob struct {
	sys *System
	ck  *extsort.Checkpoint
	in  *File
}

// OpenSortJob prepares a crash-safe sort job. For a fresh job, load supplies
// the input elements, which are staged and journaled before Run; for a
// resumed job load is not called — the input is adopted from the journal's
// staged manifest, so it must describe the same backing file the crashed job
// wrote.
func OpenSortJob(jc JobConfig, load func() ([]Elem, error)) (*SortJob, error) {
	if jc.Path == "" {
		return nil, fmt.Errorf("empart: sort job needs a backing file (checkpoint manifests describe backing-file extents)")
	}
	if jc.Journal == "" {
		return nil, fmt.Errorf("empart: sort job needs a journal path")
	}
	if jc.Config.Workers > 0 {
		return nil, fmt.Errorf("empart: checkpointed sort jobs are sequential; Workers must be 0, got %d", jc.Config.Workers)
	}
	if jc.Resume {
		return resumeSortJob(jc)
	}
	return freshSortJob(jc, load)
}

func freshSortJob(jc JobConfig, load func() ([]Elem, error)) (*SortJob, error) {
	sys, err := NewFileBacked(jc.Config, jc.Path)
	if err != nil {
		return nil, err
	}
	ck, err := extsort.CreateCheckpoint(jc.Journal)
	if err != nil {
		sys.Close()
		return nil, err
	}
	ck.FullSync = jc.FullSync
	fail := func(err error) (*SortJob, error) {
		ck.Close()
		sys.Close()
		return nil, err
	}
	elems, err := load()
	if err != nil {
		return fail(err)
	}
	in := sys.Stage(elems)
	// Durability order: input blocks first, then the manifest that points at
	// them. In the default grade the page cache provides that order for free
	// (Manifest drains the write pipeline before the journal append); under
	// FullSync the staged blocks are fsync'd to the device first. A crash in
	// between leaves a journal with no stage record, which resume refuses —
	// never a manifest describing vapor.
	m, err := in.Manifest()
	if err != nil {
		return fail(err)
	}
	if jc.FullSync {
		if err := sys.Ctx().Disk().SyncBacking(); err != nil {
			return fail(err)
		}
	}
	if err := ck.WriteBegin(int64(len(elems)), jc.Config.M, jc.Config.B); err != nil {
		return fail(err)
	}
	if err := ck.WriteStage(m); err != nil {
		return fail(err)
	}
	return &SortJob{sys: sys, ck: ck, in: in}, nil
}

func resumeSortJob(jc JobConfig) (*SortJob, error) {
	ck, err := extsort.OpenCheckpoint(jc.Journal)
	if err != nil {
		return nil, err
	}
	ck.FullSync = jc.FullSync
	if !ck.Begun || ck.Stage == nil {
		ck.Close()
		return nil, fmt.Errorf("empart: journal %s has no staged input; nothing to resume", jc.Journal)
	}
	if ck.M != jc.Config.M || ck.B != jc.Config.B {
		ck.Close()
		return nil, fmt.Errorf("empart: journal %s was written with M=%d B=%d, refusing resume with M=%d B=%d (the run structure would differ)",
			jc.Journal, ck.M, ck.B, jc.Config.M, jc.Config.B)
	}
	sys, err := NewFileBackedResume(jc.Config, jc.Path)
	if err != nil {
		ck.Close()
		return nil, err
	}
	in, err := sys.Ctx().Disk().AdoptFile(*ck.Stage, false)
	if err != nil {
		ck.Close()
		sys.Close()
		return nil, fmt.Errorf("empart: adopting staged input from %s: %w", jc.Journal, err)
	}
	return &SortJob{sys: sys, ck: ck, in: in}, nil
}

// System returns the job's System, for telemetry, stats, signal-trap
// cancellation and output readback.
func (j *SortJob) System() *System { return j.sys }

// Input returns the staged (or adopted) input file.
func (j *SortJob) Input() *File { return j.in }

// N returns the job's input size as recorded in the journal.
func (j *SortJob) N() int64 { return j.ck.N }

// Resumable reports how far the journal had progressed: completed runs and
// the last completed merge pass (-1 when merging had not started).
func (j *SortJob) Resumable() (runs int, lastPass int, done bool) {
	return len(j.ck.Runs), j.ck.LastPass, j.ck.Done != nil
}

// Run executes (or resumes) the checkpointed sort and returns the sorted
// output. On error — cancellation included — scratch created by this attempt
// is torn down; the journal keeps the completed phases, so a later resume
// does not repeat them.
//
// Under FullSync, Run keeps a background flusher active that kicks
// asynchronous writeback of the backing file every few tens of milliseconds,
// so the device absorbs each phase's output concurrently with the computation
// and the barrier fsyncs wait only for the short residual instead of a whole
// phase's output cold. The default grade needs no flusher: nothing is
// fsync'd, so there is no wait to shorten, and unforced writeback would only
// contend with the job's own reads.
func (j *SortJob) Run() (*File, error) {
	if j.ck.FullSync {
		stop := j.sys.Ctx().Disk().StartBackingFlusher(50 * time.Millisecond)
		defer stop()
	}
	return guard(j.sys, func() (*File, error) {
		return extsort.SortCheckpointed(j.sys.Ctx(), j.in, j.ck)
	})
}

// Close closes the journal and the System. The journal file itself is left
// on disk (delete it once the output has been consumed; a subsequent fresh
// job with the same journal path truncates it).
func (j *SortJob) Close() error {
	return errors.Join(j.ck.Close(), j.sys.Close())
}
