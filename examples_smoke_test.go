package empart

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesSmoke builds and runs every example main, asserting clean exit
// and non-empty output. Skipped under -short (each run takes a second or
// two).
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke runs")
	}
	for _, dir := range []string{
		"./examples/quickstart",
		"./examples/loadbalance",
		"./examples/histogram",
		"./examples/percentiles",
	} {
		t.Run(dir, func(t *testing.T) {
			out, err := exec.Command("go", "run", dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", dir, err, out)
			}
			if !strings.Contains(string(out), "I/O") {
				t.Errorf("%s output lacks I/O report:\n%s", dir, out)
			}
		})
	}
}
