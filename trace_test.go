package empart

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/workload"
)

// suite is the set of algorithm drivers the tracing tests sweep: every
// public entry point that performs counted I/O.
var suite = []struct {
	name string
	run  func(sys *System, f *File) error
}{
	{"sort", func(sys *System, f *File) error {
		out, err := sys.Sort(f)
		if err != nil {
			return err
		}
		out.Release()
		return nil
	}},
	{"distsort", func(sys *System, f *File) error {
		out, err := sys.DistributionSort(f)
		if err != nil {
			return err
		}
		out.Release()
		return nil
	}},
	{"multiselect", func(sys *System, f *File) error {
		ranks := make([]int64, 63)
		for i := range ranks {
			ranks[i] = int64(i+1) * f.Len() / 64
		}
		out, err := sys.MultiSelect(f, ranks)
		if err != nil {
			return err
		}
		out.Release()
		return nil
	}},
	{"multipartition", func(sys *System, f *File) error {
		sizes := make([]int64, 64)
		prev := int64(0)
		for i := range sizes {
			cum := int64(i+1) * f.Len() / 64
			sizes[i] = cum - prev
			prev = cum
		}
		out, err := sys.MultiPartition(f, sizes)
		if err != nil {
			return err
		}
		out.Release()
		return nil
	}},
	{"splitters", func(sys *System, f *File) error {
		out, err := sys.Splitters(f, Params{K: 32, A: 16, B: f.Len()})
		if err != nil {
			return err
		}
		out.Release()
		return nil
	}},
	{"partition", func(sys *System, f *File) error {
		res, err := sys.Partition(f, Params{K: 32, A: 0, B: f.Len() / 8})
		if err != nil {
			return err
		}
		res.Release()
		return nil
	}},
	{"precise", func(sys *System, f *File) error {
		out, err := sys.PrecisePartition(f, f.Len()/16)
		if err != nil {
			return err
		}
		out.Release()
		return nil
	}},
	{"histogram", func(sys *System, f *File) error {
		_, err := sys.EquiDepthHistogram(f, 16, 0.5, 0.5)
		return err
	}},
}

// runSuite stages a fresh deterministic input on a fresh System, optionally
// attaches a tracer, runs one driver and returns the System.
func runSuite(t *testing.T, name string, run func(sys *System, f *File) error, traced bool) *System {
	t.Helper()
	sys := newSys(t)
	elems := workload.Elems(workload.Uniform, 1<<14, sys.Config().B, 0xabcde)
	f := sys.Stage(elems)
	sys.ResetStats()
	if traced {
		sys.EnableTracing()
	}
	if err := run(sys, f); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return sys
}

// TestTracingIsZeroOverhead is the regression test for the nil-tracer fast
// path and the observational tracer: every algorithm's Disk.Stats() must be
// bit-identical with and without a tracer attached. Tracing reads counters;
// it must never perform I/O, draw randomness, or charge memory.
func TestTracingIsZeroOverhead(t *testing.T) {
	for _, tc := range suite {
		plain := runSuite(t, tc.name, tc.run, false)
		traced := runSuite(t, tc.name, tc.run, true)
		if p, q := plain.Stats(), traced.Stats(); p != q {
			t.Errorf("%s: stats diverge with tracing: untraced %v, traced %v", tc.name, p, q)
		}
		if p, q := plain.PeakMemory(), traced.PeakMemory(); p != q {
			t.Errorf("%s: peak memory diverges with tracing: untraced %d, traced %d", tc.name, p, q)
		}
	}
}

// TestTraceChildIOSumsToParent asserts the structural span invariant on the
// whole suite: children cover disjoint sub-intervals of their parent, so the
// sum of the children's I/O deltas never exceeds the parent's. For the merge
// sort root, whose two phases cover all its I/O, the sum is exact.
func TestTraceChildIOSumsToParent(t *testing.T) {
	for _, tc := range suite {
		sys := runSuite(t, tc.name, tc.run, true)
		tr := sys.Tracer()
		spans := 0
		tr.Walk(func(sp *Span) {
			spans++
			if sp.Open() {
				t.Errorf("%s: span %s left open", tc.name, sp.Name)
			}
			var sum int64
			for _, ch := range sp.Children {
				sum += ch.IO.Total()
			}
			if sum > sp.IO.Total() {
				t.Errorf("%s: span %s children I/O %d exceeds own %d",
					tc.name, sp.Name, sum, sp.IO.Total())
			}
		})
		if spans == 0 {
			t.Errorf("%s: no spans recorded", tc.name)
		}
		// Roots cover disjoint intervals of the run, so they sum to at most
		// the run's total I/O.
		var rootSum int64
		for _, r := range tr.Roots() {
			rootSum += r.IO.Total()
		}
		if total := sys.Stats().Total(); rootSum > total {
			t.Errorf("%s: root spans I/O %d exceeds run total %d", tc.name, rootSum, total)
		}
	}

	// Exactness for the sort root: form-runs plus the merge passes are all
	// the I/O there is.
	sys := runSuite(t, "sort", suite[0].run, true)
	root := sys.Tracer().Find("extsort/sort")[0]
	var sum int64
	for _, ch := range root.Children {
		sum += ch.IO.Total()
	}
	if sum != root.IO.Total() {
		t.Errorf("sort: children I/O %d != root I/O %d", sum, root.IO.Total())
	}
}

// TestTraceReportAndJSONFacade exercises the public rendering surface.
func TestTraceReportAndJSONFacade(t *testing.T) {
	sys := newSys(t)
	if sys.TraceReport() != "" {
		t.Error("TraceReport nonempty with no tracer")
	}
	if raw, err := sys.TraceJSON(); err != nil || raw != nil {
		t.Errorf("TraceJSON with no tracer = %s, %v", raw, err)
	}
	if sys.Tracer() != nil {
		t.Error("Tracer() nonnil before EnableTracing")
	}

	_, f := stageUniform(t, sys, 4096, 9)
	tr := sys.EnableTracing()
	if sys.Tracer() != tr {
		t.Error("Tracer() does not round-trip EnableTracing")
	}
	out, err := sys.Sort(f)
	if err != nil {
		t.Fatal(err)
	}
	out.Release()

	report := sys.TraceReport()
	for _, want := range []string{"extsort/sort", "extsort/form-runs", "extsort/merge-pass", "peakMem"} {
		if !strings.Contains(report, want) {
			t.Errorf("TraceReport missing %q:\n%s", want, report)
		}
	}
	raw, err := sys.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var nodes []map[string]any
	if err := json.Unmarshal(raw, &nodes); err != nil {
		t.Fatalf("TraceJSON not valid JSON: %v", err)
	}
	if len(nodes) != 1 || nodes[0]["name"] != "extsort/sort" {
		t.Errorf("TraceJSON roots = %v", nodes)
	}

	// Detaching restores the untraced fast path.
	sys.SetTracer(nil)
	if sys.TraceReport() != "" {
		t.Error("TraceReport nonempty after detach")
	}
}

// TestSuiteLeavesNoScratchFiles runs every algorithm and then asserts, via
// the live-file registry, that no scratch file survived once outputs are
// released: the leak detector satellite, exercised across the whole suite.
func TestSuiteLeavesNoScratchFiles(t *testing.T) {
	for _, tc := range suite {
		sys := runSuite(t, tc.name, tc.run, false)
		if leaked := sys.LiveScratchFiles(); len(leaked) > 0 {
			t.Errorf("%s: leaked %d scratch files: %v", tc.name, len(leaked), leaked)
		}
		// The staged input is the only file that should remain.
		if live := sys.LiveFiles(); len(live) != 1 || live[0] != "staged" {
			t.Errorf("%s: live files = %v, want [staged]", tc.name, live)
		}
	}
}
