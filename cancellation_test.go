package empart

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/emio"
	"repro/internal/workload"
)

// Cancellation-timing matrix: every algorithm, on every backend, must return
// a typed *CancelledError promptly when its context is cancelled mid-run,
// tear down its scratch, and leak no goroutines.
//
// "Mid-run" is made deterministic with a retry storm: a scripted transient
// read fault with an effectively unbounded repeat count parks the algorithm
// (or its pipeline worker) in the bounded-backoff retry loop at a known
// logical point. The test cancels the context once RetryStats shows the
// storm has started; the retry loop checks the cancel flag before every
// attempt, so the job must unwind within about one backoff period.

func cancelMatrixModes() []struct {
	name   string
	backed bool
	pipe   Pipeline
} {
	modes := []struct {
		name   string
		backed bool
		pipe   Pipeline
	}{
		{"mem", false, Pipeline{}},
		{"file", true, Pipeline{}},
		{"file-pipeline", true, Pipeline{Enabled: true, PrefetchDepth: 4, QueueDepth: 4}},
	}
	if emio.UringSupported() {
		modes = append(modes, struct {
			name   string
			backed bool
			pipe   Pipeline
		}{"uring", true, Pipeline{Enabled: true, Uring: true, PrefetchDepth: 4, QueueDepth: 4}})
	}
	return modes
}

type cancelAlgo struct {
	name string
	run  func(ctx context.Context, sys *System, f *File, n int64) error
}

func cancelAlgos() []cancelAlgo {
	return []cancelAlgo{
		{"extsort", func(ctx context.Context, sys *System, f *File, n int64) error {
			_, err := sys.SortContext(ctx, f)
			return err
		}},
		{"distsort", func(ctx context.Context, sys *System, f *File, n int64) error {
			_, err := sys.DistributionSortContext(ctx, f)
			return err
		}},
		{"msel", func(ctx context.Context, sys *System, f *File, n int64) error {
			_, err := sys.MultiSelectContext(ctx, f, []int64{1, n / 2, n})
			return err
		}},
		{"mpart", func(ctx context.Context, sys *System, f *File, n int64) error {
			_, err := sys.MultiPartitionContext(ctx, f, []int64{n / 4, n / 4, n - 2*(n/4)})
			return err
		}},
		{"approxsplit", func(ctx context.Context, sys *System, f *File, n int64) error {
			_, err := sys.SplittersContext(ctx, f, Params{K: 16, A: 16, B: n})
			return err
		}},
		{"histogram", func(ctx context.Context, sys *System, f *File, n int64) error {
			_, err := sys.EquiDepthHistogramContext(ctx, f, 8, 0.5, 0.5)
			return err
		}},
	}
}

// runCancelCase drives one (algorithm, backend) cell: park the job in a
// scripted retry storm, cancel its context, and require a prompt typed
// failure with full teardown.
func runCancelCase(t *testing.T, a cancelAlgo, backed bool, pipe Pipeline) {
	t.Helper()
	const n = 1 << 14
	cfg := Config{M: 1 << 10, B: 1 << 5}
	cfg.Pipeline = pipe
	// An effectively unbounded storm: the job cannot finish on its own, so
	// the only way out of this test is a cancel that actually works.
	cfg.Retry = Retry{MaxAttempts: 1 << 30, BaseBackoff: 100 * time.Microsecond, MaxBackoff: 200 * time.Microsecond}

	base := emio.NumGoroutines()
	var sys *System
	var err error
	if backed {
		sys, err = NewFileBacked(cfg, filepath.Join(t.TempDir(), "c.dat"))
	} else {
		sys, err = New(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	f := sys.Stage(workload.Elems(workload.Uniform, n, cfg.B, 0xca9ce1))

	inj := NewInjector(0xca9ce1)
	inj.FailRead(10, 1<<30) // storm at the 11th physical read, post-staging
	sys.SetInjector(inj)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx, sys, f, n) }()

	// Wait for the storm to start, proving the algorithm is mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for sys.RetryStats().Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retry storm never started; fault schedule missed the algorithm")
		}
		time.Sleep(time.Millisecond)
	}
	cancelled := time.Now()
	cancel()

	var runErr error
	select {
	case runErr = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("algorithm did not return within 30s of cancellation")
	}
	latency := time.Since(cancelled)

	if runErr == nil {
		t.Fatal("algorithm succeeded despite cancellation mid-storm")
	}
	var ce *CancelledError
	if !errors.As(runErr, &ce) {
		t.Fatalf("got %T (%v), want *CancelledError", runErr, runErr)
	}
	if !errors.Is(runErr, ErrCancelled) {
		t.Errorf("error does not unwrap to ErrCancelled: %v", runErr)
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Errorf("context cause lost in transit: %v", runErr)
	}
	// The retry loop re-checks the flag each backoff period (<= 200µs), so
	// the unwind is bounded by teardown, not by the storm. A generous bound
	// still catches a cancel that only lands at the next phase boundary.
	if latency > 5*time.Second {
		t.Errorf("cancellation took %v to surface", latency)
	}

	// Teardown: no scratch survives a cancelled job, and closing the system
	// reaps every pipeline goroutine.
	emio.RequireNoLeaks(t, sys.Ctx())
	if err := sys.Close(); err != nil {
		t.Errorf("close after cancel: %v", err)
	}
	emio.RequireNoGoroutineLeaks(t, base)
}

func TestCancellationMatrix(t *testing.T) {
	for _, mode := range cancelMatrixModes() {
		t.Run(mode.name, func(t *testing.T) {
			for _, a := range cancelAlgos() {
				t.Run(a.name, func(t *testing.T) {
					runCancelCase(t, a, mode.backed, mode.pipe)
				})
			}
		})
	}
}

// TestCancellationSingleProc repeats one pipelined cell at GOMAXPROCS=1: the
// canceller, the algorithm and the pipeline workers share one P, so any
// busy-wait in the cancel path would livelock here.
func TestCancellationSingleProc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	runCancelCase(t, cancelAlgos()[0], true,
		Pipeline{Enabled: true, PrefetchDepth: 4, QueueDepth: 4})
}

// TestBindContextRaceFree exercises the context watcher's lifecycle: binding
// and stopping without a cancel must not leak the watcher goroutine, and a
// pre-cancelled context must cancel the system before any I/O runs.
func TestBindContextLifecycle(t *testing.T) {
	sys, err := New(Config{M: 1 << 10, B: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	base := emio.NumGoroutines()
	for i := 0; i < 100; i++ {
		stop := sys.BindContext(context.Background())
		stop()
	}
	emio.RequireNoGoroutineLeaks(t, base)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := sys.Stage(workload.Elems(workload.Uniform, 1<<10, 1<<5, 1))
	if _, err := sys.SortContext(ctx, f); !errors.Is(err, ErrCancelled) {
		t.Fatalf("sort under a dead context: %v, want ErrCancelled", err)
	}
	sys.ClearCancel()
	out, err := sys.Sort(f)
	if err != nil {
		t.Fatalf("sort after ClearCancel: %v", err)
	}
	out.Release()
	emio.RequireNoLeaks(t, sys.Ctx())
}
