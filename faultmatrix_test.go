package empart

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/emio"
	"repro/internal/workload"
)

// The deterministic fault matrix from the resilience acceptance criteria:
// a seeded transient-fault schedule must (a) complete with identical output
// when bounded retry is enabled, with the retries visible in RetryStats and
// the metrics registry, and (b) fail with a typed *TransientError when it is
// not; and a flipped bit in any stored block must surface as a typed
// *CorruptionError — never as silently wrong output — with the write-behind
// pipeline on and off.

func faultMatrixModes() []struct {
	name string
	pipe Pipeline
} {
	modes := []struct {
		name string
		pipe Pipeline
	}{
		{"sync", Pipeline{}},
		{"pipeline", Pipeline{Enabled: true, PrefetchDepth: 4, QueueDepth: 4}},
	}
	if emio.UringSupported() {
		// With an injector or retry policy armed the ring falls back to one
		// submission per runPhys attempt, so scripted per-kind fault schedules
		// keep their deterministic ordering; these rows prove the ring
		// composes with the whole resilience layer (and that the completion
		// reaper shuts down leak-free after induced failures, via the
		// RequireNoGoroutineLeaks checks the matrix tests already carry).
		modes = append(modes,
			struct {
				name string
				pipe Pipeline
			}{"uring", Pipeline{Uring: true}},
			struct {
				name string
				pipe Pipeline
			}{"uring-pipeline", Pipeline{Enabled: true, Uring: true, PrefetchDepth: 4, QueueDepth: 4}},
		)
	}
	return modes
}

// transientSchedule arms inj with the matrix's fail-once fault points. Op
// indices count from injector attach, per I/O kind, so the schedule is
// meaningful in both pipeline modes (both perform well past four physical
// transfers of each kind on this workload).
func transientSchedule(inj *Injector) {
	inj.FailWrite(0, 1)
	inj.FailWrite(3, 1)
	inj.FailRead(0, 1)
	inj.FailRead(2, 1)
}

func sortedBaseline(t *testing.T, elems []Elem) []Elem {
	t.Helper()
	sys, err := New(Config{M: 1 << 10, B: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Sort(sys.Stage(elems))
	if err != nil {
		t.Fatal(err)
	}
	return sys.Read(out)
}

func TestFaultMatrixTransientRecovery(t *testing.T) {
	const n = 1 << 12
	cfg := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, cfg.B, 0x5eed)
	want := sortedBaseline(t, elems)

	for _, mode := range faultMatrixModes() {
		t.Run(mode.name, func(t *testing.T) {
			c := cfg
			c.Pipeline = mode.pipe
			c.Retry = Retry{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}
			sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "m.dat"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			reg := sys.EnableMetrics()

			f := sys.Stage(elems)
			inj := NewInjector(0x5eed)
			transientSchedule(inj)
			sys.SetInjector(inj)
			out, err := sys.Sort(f)
			if err != nil {
				t.Fatalf("sort under transient schedule with retry: %v", err)
			}
			sys.SetInjector(nil)
			got := sys.Read(out)
			if len(got) != len(want) {
				t.Fatalf("output has %d elements, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("output element %d = %v, want %v", i, got[i], want[i])
				}
			}
			rs := sys.RetryStats()
			if rs.Retries != 4 {
				t.Errorf("RetryStats.Retries = %d, want 4 (the full schedule)", rs.Retries)
			}
			if rs.Giveups != 0 {
				t.Errorf("RetryStats.Giveups = %d, want 0", rs.Giveups)
			}
			if got := reg.Snapshot().Counter("empart_io_retries_total"); got != 4 {
				t.Errorf("empart_io_retries_total = %d, want 4", got)
			}
			if st := inj.Stats(); st.Transient != 4 {
				t.Errorf("injector fired %d transient faults, want 4", st.Transient)
			}
		})
	}
}

func TestFaultMatrixTransientWithoutRetryFails(t *testing.T) {
	const n = 1 << 12
	cfg := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, cfg.B, 0x5eed)

	for _, mode := range faultMatrixModes() {
		t.Run(mode.name, func(t *testing.T) {
			base := emio.NumGoroutines()
			c := cfg
			c.Pipeline = mode.pipe
			sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "m.dat"))
			if err != nil {
				t.Fatal(err)
			}
			f := sys.Stage(elems)
			inj := NewInjector(0x5eed)
			transientSchedule(inj)
			sys.SetInjector(inj)
			out, err := sys.Sort(f)
			if err == nil {
				out.Release()
				// A pipelined write failure may still be parked as sticky
				// state; it must surface at Close at the latest.
				err = sys.Close()
			} else {
				sys.Close()
			}
			var te *emio.TransientError
			if !errors.As(err, &te) {
				t.Fatalf("error = %v, want *emio.TransientError", err)
			}
			if !errors.Is(err, emio.ErrInjected) || !errors.Is(err, emio.ErrTransient) {
				t.Errorf("error %v does not wrap both fault marks", err)
			}
			emio.RequireNoGoroutineLeaks(t, base)
		})
	}
}

func TestFaultMatrixCorruptionDetected(t *testing.T) {
	const n = 1 << 11
	cfg := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, cfg.B, 0xc0de)
	want := sortedBaseline(t, elems)
	nblocks := n / int(cfg.B)

	for _, mode := range faultMatrixModes() {
		t.Run(mode.name, func(t *testing.T) {
			// Flip one bit in a sample of blocks spanning the file — first,
			// interior, last — and demand a typed detection every time.
			for _, blk := range []int{0, 1, nblocks / 2, nblocks - 2, nblocks - 1} {
				base := emio.NumGoroutines()
				c := cfg
				c.Pipeline = mode.pipe
				c.Checksum = true
				sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "c.dat"))
				if err != nil {
					t.Fatal(err)
				}
				f := sys.Stage(elems)
				bit := (blk*11 + 5) % (int(cfg.B) * 16 * 8)
				if err := sys.CorruptBlock(f, blk, bit); err != nil {
					t.Fatalf("CorruptBlock(%d, %d): %v", blk, bit, err)
				}
				out, err := sys.Sort(f)
				if err == nil {
					// Detection failed; prove whether the output is silently
					// wrong before reporting.
					got := sys.Read(out)
					wrong := len(got) != len(want)
					for i := 0; !wrong && i < len(want); i++ {
						wrong = got[i] != want[i]
					}
					t.Fatalf("block %d bit %d: sort succeeded despite corruption (output wrong: %v)", blk, bit, wrong)
				}
				var ce *emio.CorruptionError
				if !errors.As(err, &ce) {
					t.Fatalf("block %d bit %d: error = %v, want *emio.CorruptionError", blk, bit, err)
				}
				if ce.Block != blk {
					t.Errorf("CorruptionError names block %d, want %d", ce.Block, blk)
				}
				sys.Close()
				emio.RequireNoGoroutineLeaks(t, base)
			}
		})
	}
}

// TestFaultMatrixShardFault is the parallel row of the matrix: a fault
// injected on one shard sub-disk must surface from the parallel engine as a
// typed error chain — *ShardError naming the shard, wrapping the usual
// *TransientError/ErrInjected marks — without deadlocking the other workers
// (every call joins its goroutines even on failure) and without leaking
// goroutines. Each shard has its own injector slot, so the schedule fires
// only on the chosen shard no matter which worker runs it.
func TestFaultMatrixShardFault(t *testing.T) {
	const n = 1 << 12
	cfg := Config{M: 1 << 10, B: 1 << 5, Workers: 4}
	elems := workload.Elems(workload.Uniform, n, cfg.B, 0x5a4d)

	for _, mode := range faultMatrixModes() {
		t.Run(mode.name, func(t *testing.T) {
			for _, kind := range []string{"read", "write"} {
				for _, shard := range []int{0, 1, 3} {
					base := emio.NumGoroutines()
					c := cfg
					c.Pipeline = mode.pipe
					sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "s.dat"))
					if err != nil {
						t.Fatal(err)
					}
					f := sys.Stage(elems)
					inj := NewInjector(0x5a4d)
					if kind == "read" {
						inj.FailRead(0, 1)
					} else {
						inj.FailWrite(0, 1)
					}
					sys.SetShardHook(func(k int, d *Disk) {
						if k == shard {
							d.SetInjector(inj)
						}
					})
					out, err := sys.Sort(f)
					if err == nil {
						out.Release()
						t.Fatalf("%s fault on shard %d: sort succeeded", kind, shard)
					}
					var se *ShardError
					if !errors.As(err, &se) {
						t.Fatalf("%s fault on shard %d: error = %v, want *ShardError", kind, shard, err)
					}
					if se.Shard != shard {
						t.Errorf("%s fault: ShardError names shard %d, want %d", kind, se.Shard, shard)
					}
					var te *emio.TransientError
					if !errors.As(err, &te) {
						t.Errorf("%s fault on shard %d: chain lacks *TransientError: %v", kind, shard, err)
					}
					if !errors.Is(err, emio.ErrInjected) {
						t.Errorf("%s fault on shard %d: chain lacks ErrInjected: %v", kind, shard, err)
					}
					if st := inj.Stats(); st.Transient != 1 {
						t.Errorf("%s fault: injector fired %d faults, want exactly 1 (other shards untouched)", kind, st.Transient)
					}
					sys.Close()
					emio.RequireNoGoroutineLeaks(t, base)
				}
			}
		})
	}
}

// TestFaultMatrixProbabilistic soaks the retry layer under a seeded random
// fault stream dense enough to hit many transfers, proving recovery is not an
// artifact of the scripted schedule. Reproducible: the injector's stream is
// PCG-seeded and the backoff jitter is deterministic.
func TestFaultMatrixProbabilistic(t *testing.T) {
	const n = 1 << 12
	cfg := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, cfg.B, 0xd1ce)
	want := sortedBaseline(t, elems)

	for _, mode := range faultMatrixModes() {
		t.Run(mode.name, func(t *testing.T) {
			c := cfg
			c.Pipeline = mode.pipe
			c.Checksum = true
			c.Retry = Retry{MaxAttempts: 6, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}
			sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "p.dat"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			f := sys.Stage(elems)
			inj := NewInjector(0xd1ce)
			inj.Probabilistic(0.2, 0, 2) // transient-only: every run must finish
			sys.SetInjector(inj)
			out, err := sys.Sort(f)
			if err != nil {
				t.Fatalf("sort under probabilistic transient faults: %v", err)
			}
			sys.SetInjector(nil)
			got := sys.Read(out)
			if !bytes.Equal(elemsKey(got), elemsKey(want)) {
				t.Fatal("output differs from the fault-free baseline")
			}
			if st := inj.Stats(); st.Transient == 0 {
				t.Error("probabilistic injector never fired; soak is vacuous")
			}
			if rs := sys.RetryStats(); rs.Retries == 0 {
				t.Error("no retries recorded despite injected faults")
			}
		})
	}
}
