package empart

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

// Job-layer validation: the crash-safe sort job must refuse configurations
// it cannot honor — and refuse to resume a journal whose machine shape
// differs from the caller's, since M and B determine the run structure.

func TestOpenSortJobValidation(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{M: 1 << 10, B: 1 << 5}
	load := func() ([]Elem, error) {
		return workload.Elems(workload.Uniform, 1<<10, cfg.B, 1), nil
	}

	if _, err := OpenSortJob(JobConfig{Config: cfg, Journal: filepath.Join(dir, "j")}, load); err == nil {
		t.Error("job without a backing file accepted")
	}
	if _, err := OpenSortJob(JobConfig{Config: cfg, Path: filepath.Join(dir, "b.dat")}, load); err == nil {
		t.Error("job without a journal accepted")
	}
	par := cfg
	par.Workers = 4
	if _, err := OpenSortJob(JobConfig{Config: par, Path: filepath.Join(dir, "b.dat"), Journal: filepath.Join(dir, "j")}, load); err == nil {
		t.Error("parallel checkpointed job accepted; shard scratch is not journaled")
	}
	if _, err := OpenSortJob(JobConfig{Config: cfg, Path: filepath.Join(dir, "no.dat"), Journal: filepath.Join(dir, "absent.journal"), Resume: true}, load); err == nil {
		t.Error("resume from a journal with no staged input accepted")
	}
}

func TestSortJobRunAndResumeShapeCheck(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{M: 1 << 10, B: 1 << 5}
	backing := filepath.Join(dir, "b.dat")
	journal := filepath.Join(dir, "j.journal")
	elems := workload.Elems(workload.Uniform, 1<<12, cfg.B, 0x50b7)

	job, err := OpenSortJob(JobConfig{Config: cfg, Path: backing, Journal: journal},
		func() ([]Elem, error) { return elems, nil })
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.Run()
	if err != nil {
		t.Fatalf("job run: %v", err)
	}
	if out.Len() != int64(len(elems)) {
		t.Errorf("output length %d, want %d", out.Len(), len(elems))
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}

	// Resuming with a different machine shape must be refused loudly: a
	// different M or B would re-plan the runs over adopted state.
	other := Config{M: 1 << 11, B: 1 << 5}
	_, err = OpenSortJob(JobConfig{Config: other, Path: backing, Journal: journal, Resume: true}, nil)
	if err == nil {
		t.Fatal("resume with mismatched M accepted")
	}
	if !strings.Contains(err.Error(), "refusing resume") {
		t.Errorf("mismatch error does not explain the refusal: %v", err)
	}

	// Resuming with the right shape adopts the finished output with no I/O.
	job2, err := OpenSortJob(JobConfig{Config: cfg, Path: backing, Journal: journal, Resume: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer job2.Close()
	if _, _, done := job2.Resumable(); !done {
		t.Error("finished job not reported done on resume")
	}
	sys := job2.System()
	sys.ResetStats()
	out2, err := job2.Run()
	if err != nil {
		t.Fatalf("resume of finished job: %v", err)
	}
	if st := sys.Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Errorf("resume of finished job performed I/O %+v", st)
	}
	if out2.Len() != int64(len(elems)) {
		t.Errorf("resumed output length %d, want %d", out2.Len(), len(elems))
	}
}
